#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "runtime/thread_pool.h"
#include "runtime/workspace.h"

namespace pgti::ops {
namespace {

constexpr std::int64_t kGrain = 16384;  // min elements per parallel chunk

// Register/cache blocking for the matmul family.  kMR rows of A are
// held against one streamed row of B (4x fewer B loads than the naive
// kernel) and accumulated into a kMR x kNR panel that lives in
// registers; the j-panel keeps the B working set cache-resident.  The
// accumulation per output element remains strictly k-ascending, so the
// blocked kernels are bit-identical to the naive reference regardless
// of blocking factors, thread count, or SIMD width.
constexpr std::int64_t kMR = 4;   // register-block rows
constexpr std::int64_t kNR = 64;  // j-panel width (floats)

const Tensor& require_contiguous(const Tensor& t, const char* what) {
  if (!t.is_contiguous()) {
    throw std::logic_error(std::string(what) + ": tensor must be contiguous");
  }
  return t;
}

void require_same_shape(const Tensor& a, const Tensor& b, const char* what) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch " +
                                shape_to_string(a.shape()) + " vs " +
                                shape_to_string(b.shape()));
  }
}

template <typename F>
Tensor binary_op(const Tensor& a, const Tensor& b, const char* what, F f) {
  require_same_shape(a, b, what);
  require_contiguous(a, what);
  require_contiguous(b, what);
  Tensor out = Tensor::empty(a.shape(), a.space());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  parallel_for(0, a.numel(), kGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) po[i] = f(pa[i], pb[i]);
  });
  return out;
}

template <typename F>
void binary_into(const Tensor& a, const Tensor& b, Tensor& out, const char* what, F f) {
  require_same_shape(a, b, what);
  require_same_shape(a, out, what);
  require_contiguous(a, what);
  require_contiguous(b, what);
  require_contiguous(out, what);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  parallel_for(0, a.numel(), kGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) po[i] = f(pa[i], pb[i]);
  });
}

template <typename F>
Tensor unary_op(const Tensor& t, const char* what, F f) {
  require_contiguous(t, what);
  Tensor out = Tensor::empty(t.shape(), t.space());
  const float* pt = t.data();
  float* po = out.data();
  parallel_for(0, t.numel(), kGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) po[i] = f(pt[i]);
  });
  return out;
}

template <typename F>
void unary_inplace(Tensor& t, const char* what, F f) {
  require_contiguous(t, what);
  float* pt = t.data();
  parallel_for(0, t.numel(), kGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) pt[i] = f(pt[i]);
  });
}

// Rows/cols of a tensor treated as a [M, C] matrix (flatten leading dims).
std::pair<std::int64_t, std::int64_t> as_matrix(const Tensor& t, const char* what) {
  if (t.dim() < 1) throw std::invalid_argument(std::string(what) + ": rank 0");
  const std::int64_t c = t.size(-1);
  return {t.numel() / (c == 0 ? 1 : c), c};
}

// Applies the optional bias/activation epilogue to a freshly computed
// row segment of C (the store step of the blocked kernels).
inline void store_epilogue(const float* acc, float* crow, std::int64_t nr,
                           const float* bias, Act act) {
  if (bias != nullptr) {
    for (std::int64_t j = 0; j < nr; ++j) crow[j] = act_apply(act, acc[j] + bias[j]);
  } else if (act != Act::kIdentity) {
    for (std::int64_t j = 0; j < nr; ++j) crow[j] = act_apply(act, acc[j]);
  } else {
    std::copy(acc, acc + nr, crow);
  }
}

// Rows [i_lo, i_hi) of C[M,N] = A[M,K] * B[K,N] with fused epilogue.
void gemm_nn_rows(const float* pa, const float* pb, float* pc, std::int64_t i_lo,
                  std::int64_t i_hi, std::int64_t K, std::int64_t N,
                  const float* bias, Act act) {
  float acc[kMR][kNR];
  for (std::int64_t i0 = i_lo; i0 < i_hi; i0 += kMR) {
    const std::int64_t mr = std::min(kMR, i_hi - i0);
    for (std::int64_t j0 = 0; j0 < N; j0 += kNR) {
      const std::int64_t nr = std::min(kNR, N - j0);
      for (std::int64_t r = 0; r < mr; ++r) std::fill(acc[r], acc[r] + nr, 0.0f);
      if (mr == kMR && nr == kNR) {
        // Full register block: one B-row load feeds kMR accumulator rows.
        for (std::int64_t k = 0; k < K; ++k) {
          const float* brow = pb + k * N + j0;
          for (std::int64_t r = 0; r < kMR; ++r) {
            const float a = pa[(i0 + r) * K + k];
            for (std::int64_t j = 0; j < kNR; ++j) acc[r][j] += a * brow[j];
          }
        }
      } else {
        for (std::int64_t k = 0; k < K; ++k) {
          const float* brow = pb + k * N + j0;
          for (std::int64_t r = 0; r < mr; ++r) {
            const float a = pa[(i0 + r) * K + k];
            for (std::int64_t j = 0; j < nr; ++j) acc[r][j] += a * brow[j];
          }
        }
      }
      for (std::int64_t r = 0; r < mr; ++r) {
        store_epilogue(acc[r], pc + (i0 + r) * N + j0, nr, bias == nullptr ? nullptr : bias + j0,
                       act);
      }
    }
  }
}

// Parallel grain for row-partitioned gemm: enough rows per chunk to
// amortize dispatch, rounded to the register block so full blocks
// dominate.
std::int64_t gemm_grain(std::int64_t K, std::int64_t N) {
  const std::int64_t per_row = std::max<std::int64_t>(1, K * N);
  std::int64_t rows = std::max<std::int64_t>(1, 4 * kGrain / per_row);
  return ((rows + kMR - 1) / kMR) * kMR;
}

Tensor matmul_bias_act_impl(const Tensor& a, const Tensor& b, const float* bias,
                            Act act, const char* what) {
  require_contiguous(a, what);
  require_contiguous(b, what);
  if (a.dim() != 2 || b.dim() != 2 || a.size(1) != b.size(0)) {
    throw std::invalid_argument(std::string(what) + ": incompatible shapes " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(b.shape()));
  }
  const std::int64_t M = a.size(0), K = a.size(1), N = b.size(1);
  Tensor out = Tensor::empty({M, N}, a.space());
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  parallel_for(0, M, gemm_grain(K, N), [&](std::int64_t lo, std::int64_t hi) {
    gemm_nn_rows(pa, pb, pc, lo, hi, K, N, bias, act);
  });
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "add", [](float x, float y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "sub", [](float x, float y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "mul", [](float x, float y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "div", [](float x, float y) { return x / y; });
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary_op(a, "add_scalar", [s](float x) { return x + s; });
}
Tensor mul_scalar(const Tensor& a, float s) {
  return unary_op(a, "mul_scalar", [s](float x) { return x * s; });
}

void add_(Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "add_");
  require_contiguous(a, "add_");
  require_contiguous(b, "add_");
  float* pa = a.data();
  const float* pb = b.data();
  parallel_for(0, a.numel(), kGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) pa[i] += pb[i];
  });
}

void sub_(Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "sub_");
  require_contiguous(a, "sub_");
  require_contiguous(b, "sub_");
  float* pa = a.data();
  const float* pb = b.data();
  parallel_for(0, a.numel(), kGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) pa[i] -= pb[i];
  });
}

void mul_(Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "mul_");
  require_contiguous(a, "mul_");
  require_contiguous(b, "mul_");
  float* pa = a.data();
  const float* pb = b.data();
  parallel_for(0, a.numel(), kGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) pa[i] *= pb[i];
  });
}

void scale_(Tensor& a, float s) {
  require_contiguous(a, "scale_");
  float* pa = a.data();
  parallel_for(0, a.numel(), kGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) pa[i] *= s;
  });
}

void axpy_(float alpha, const Tensor& x, Tensor& y) {
  require_same_shape(x, y, "axpy_");
  require_contiguous(x, "axpy_");
  require_contiguous(y, "axpy_");
  const float* px = x.data();
  float* py = y.data();
  parallel_for(0, x.numel(), kGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) py[i] += alpha * px[i];
  });
}

void sigmoid_(Tensor& t) {
  unary_inplace(t, "sigmoid_", [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
void tanh_(Tensor& t) {
  unary_inplace(t, "tanh_", [](float x) { return std::tanh(x); });
}
void relu_(Tensor& t) {
  unary_inplace(t, "relu_", [](float x) { return x > 0.0f ? x : 0.0f; });
}
void apply_act_(Tensor& t, Act act) {
  if (act == Act::kIdentity) return;
  unary_inplace(t, "apply_act_", [act](float x) { return act_apply(act, x); });
}

void add_into(const Tensor& a, const Tensor& b, Tensor& out) {
  binary_into(a, b, out, "add_into", [](float x, float y) { return x + y; });
}
void sub_into(const Tensor& a, const Tensor& b, Tensor& out) {
  binary_into(a, b, out, "sub_into", [](float x, float y) { return x - y; });
}
void mul_into(const Tensor& a, const Tensor& b, Tensor& out) {
  binary_into(a, b, out, "mul_into", [](float x, float y) { return x * y; });
}

Tensor sigmoid(const Tensor& t) {
  return unary_op(t, "sigmoid", [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Tensor tanh(const Tensor& t) {
  return unary_op(t, "tanh", [](float x) { return std::tanh(x); });
}
Tensor relu(const Tensor& t) {
  return unary_op(t, "relu", [](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor exp(const Tensor& t) {
  return unary_op(t, "exp", [](float x) { return std::exp(x); });
}
Tensor abs(const Tensor& t) {
  return unary_op(t, "abs", [](float x) { return std::fabs(x); });
}
Tensor neg(const Tensor& t) {
  return unary_op(t, "neg", [](float x) { return -x; });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  return matmul_bias_act_impl(a, b, nullptr, Act::kIdentity, "matmul");
}

Tensor matmul_bias_act(const Tensor& a, const Tensor& b, const Tensor& bias, Act act) {
  require_contiguous(bias, "matmul_bias_act");
  if (bias.dim() != 1 || bias.size(0) != b.size(1)) {
    throw std::invalid_argument("matmul_bias_act: bias must be [N]");
  }
  return matmul_bias_act_impl(a, b, bias.data(), act, "matmul_bias_act");
}

Tensor matmul_reference(const Tensor& a, const Tensor& b) {
  require_contiguous(a, "matmul_reference");
  require_contiguous(b, "matmul_reference");
  if (a.dim() != 2 || b.dim() != 2 || a.size(1) != b.size(0)) {
    throw std::invalid_argument("matmul_reference: incompatible shapes " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(b.shape()));
  }
  const std::int64_t M = a.size(0), K = a.size(1), N = b.size(1);
  Tensor out = Tensor::zeros({M, N}, a.space());
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  parallel_for(0, M, std::max<std::int64_t>(1, kGrain / std::max<std::int64_t>(1, K * N / M + 1)),
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t i = lo; i < hi; ++i) {
                   const float* arow = pa + i * K;
                   float* crow = pc + i * N;
                   for (std::int64_t k = 0; k < K; ++k) {
                     const float aik = arow[k];
                     if (aik == 0.0f) continue;
                     const float* brow = pb + k * N;
                     for (std::int64_t j = 0; j < N; ++j) crow[j] += aik * brow[j];
                   }
                 }
               });
  return out;
}

Tensor matmul_tn_reference(const Tensor& a, const Tensor& b) {
  require_contiguous(a, "matmul_tn_reference");
  require_contiguous(b, "matmul_tn_reference");
  if (a.dim() != 2 || b.dim() != 2 || a.size(0) != b.size(0)) {
    throw std::invalid_argument("matmul_tn_reference: incompatible shapes");
  }
  const std::int64_t K = a.size(0), M = a.size(1), N = b.size(1);
  Tensor out = Tensor::zeros({M, N}, a.space());
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  parallel_for(0, M, 8, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t k = 0; k < K; ++k) {
      const float* arow = pa + k * M;
      const float* brow = pb + k * N;
      for (std::int64_t m = lo; m < hi; ++m) {
        const float akm = arow[m];
        if (akm == 0.0f) continue;
        float* crow = pc + m * N;
        for (std::int64_t n = 0; n < N; ++n) crow[n] += akm * brow[n];
      }
    }
  });
  return out;
}

Tensor matmul_nt_reference(const Tensor& a, const Tensor& b) {
  require_contiguous(a, "matmul_nt_reference");
  require_contiguous(b, "matmul_nt_reference");
  if (a.dim() != 2 || b.dim() != 2 || a.size(1) != b.size(1)) {
    throw std::invalid_argument("matmul_nt_reference: incompatible shapes");
  }
  const std::int64_t M = a.size(0), K = a.size(1), N = b.size(0);
  Tensor out = Tensor::empty({M, N}, a.space());
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  parallel_for(0, M, 8, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const float* arow = pa + i * K;
      float* crow = pc + i * N;
      for (std::int64_t j = 0; j < N; ++j) {
        const float* brow = pb + j * K;
        float acc = 0.0f;
        for (std::int64_t k = 0; k < K; ++k) acc += arow[k] * brow[k];
        crow[j] = acc;
      }
    }
  });
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  require_contiguous(a, "matmul_tn");
  require_contiguous(b, "matmul_tn");
  if (a.dim() != 2 || b.dim() != 2 || a.size(0) != b.size(0)) {
    throw std::invalid_argument("matmul_tn: incompatible shapes");
  }
  const std::int64_t K = a.size(0), M = a.size(1), N = b.size(1);
  Tensor out = Tensor::empty({M, N}, a.space());
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  // C[m, n] = sum_k A[k, m] * B[k, n].  Same register-blocked shape as
  // gemm_nn_rows; the kMR A operands for row k are contiguous in A's
  // row k, so the load is a plain 4-float read.
  parallel_for(0, M, gemm_grain(K, N), [&](std::int64_t lo, std::int64_t hi) {
    float acc[kMR][kNR];
    for (std::int64_t m0 = lo; m0 < hi; m0 += kMR) {
      const std::int64_t mr = std::min(kMR, hi - m0);
      for (std::int64_t j0 = 0; j0 < N; j0 += kNR) {
        const std::int64_t nr = std::min(kNR, N - j0);
        for (std::int64_t r = 0; r < mr; ++r) std::fill(acc[r], acc[r] + nr, 0.0f);
        if (mr == kMR && nr == kNR) {
          for (std::int64_t k = 0; k < K; ++k) {
            const float* a4 = pa + k * M + m0;
            const float* brow = pb + k * N + j0;
            for (std::int64_t r = 0; r < kMR; ++r) {
              const float akm = a4[r];
              for (std::int64_t j = 0; j < kNR; ++j) acc[r][j] += akm * brow[j];
            }
          }
        } else {
          for (std::int64_t k = 0; k < K; ++k) {
            const float* a4 = pa + k * M + m0;
            const float* brow = pb + k * N + j0;
            for (std::int64_t r = 0; r < mr; ++r) {
              const float akm = a4[r];
              for (std::int64_t j = 0; j < nr; ++j) acc[r][j] += akm * brow[j];
            }
          }
        }
        for (std::int64_t r = 0; r < mr; ++r) {
          std::copy(acc[r], acc[r] + nr, pc + (m0 + r) * N + j0);
        }
      }
    }
  });
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  require_contiguous(a, "matmul_nt");
  require_contiguous(b, "matmul_nt");
  if (a.dim() != 2 || b.dim() != 2 || a.size(1) != b.size(1)) {
    throw std::invalid_argument("matmul_nt: incompatible shapes");
  }
  const std::int64_t M = a.size(0), K = a.size(1), N = b.size(0);
  // Row-row dot products cannot vectorize: each C[i, j] is one serial
  // k-chain, and SIMD across k would reassociate the sum.  Instead,
  // transpose B once (O(K*N), negligible next to the 2*M*K*N GEMM) and
  // run the same j-panel-vectorized kernel as matmul.  Accumulation per
  // element is still a single k-ascending chain — identical bits to
  // the dot-product form, ~10x faster at backward shapes.  The [K, N]
  // scratch is leased from the WorkspaceCache: backward calls this at
  // the same shapes every step, so after the first step the transpose
  // buffer is recycled instead of reallocated.
  runtime::WorkspaceCache::Handle bt =
      runtime::WorkspaceCache::instance().acquire("matmul_nt_bt", K * N, b.space());
  const float* pb = b.data();
  float* pbt = bt.data();
  parallel_for(0, N, std::max<std::int64_t>(1, kGrain / std::max<std::int64_t>(1, K)),
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t j = lo; j < hi; ++j) {
                   const float* brow = pb + j * K;
                   for (std::int64_t k = 0; k < K; ++k) pbt[k * N + j] = brow[k];
                 }
               });
  Tensor out = Tensor::empty({M, N}, a.space());
  const float* pa = a.data();
  float* pc = out.data();
  parallel_for(0, M, gemm_grain(K, N), [&](std::int64_t lo, std::int64_t hi) {
    gemm_nn_rows(pa, pbt, pc, lo, hi, K, N, nullptr, Act::kIdentity);
  });
  return out;
}

namespace {

// dz[i] = g[i] * act'(y[i]) over the flat range [lo, hi).  The exact
// per-element expressions of the unfused activation backwards; both the
// standalone act_backward kernel and the fused epilogue pre-pass run
// this code, so their bits agree regardless of how the range is
// partitioned (each element is independent).
inline void act_backward_range(const float* pg, const float* py, float* pd,
                               std::int64_t lo, std::int64_t hi, Act act) {
  switch (act) {
    case Act::kSigmoid:
      for (std::int64_t i = lo; i < hi; ++i) pd[i] = pg[i] * py[i] * (1.0f - py[i]);
      break;
    case Act::kTanh:
      for (std::int64_t i = lo; i < hi; ++i) pd[i] = pg[i] * (1.0f - py[i] * py[i]);
      break;
    case Act::kRelu:
      for (std::int64_t i = lo; i < hi; ++i) pd[i] = py[i] > 0.0f ? pg[i] : 0.0f;
      break;
    case Act::kIdentity:
      std::copy(pg + lo, pg + hi, pd + lo);
      break;
  }
}

}  // namespace

Tensor act_backward(const Tensor& g, const Tensor& y, Act act) {
  if (act == Act::kIdentity) return g;
  require_same_shape(g, y, "act_backward");
  require_contiguous(g, "act_backward");
  require_contiguous(y, "act_backward");
  Tensor dz = Tensor::empty(y.shape(), y.space());
  const float* py = y.data();
  const float* pg = g.data();
  float* pd = dz.data();
  parallel_for(0, y.numel(), kGrain, [&](std::int64_t lo, std::int64_t hi) {
    act_backward_range(pg, py, pd, lo, hi, act);
  });
  return dz;
}

Tensor matmul_nt_act_backward(const Tensor& g, const Tensor& y, Act act,
                              const Tensor& w, Tensor& dz) {
  require_contiguous(g, "matmul_nt_act_backward");
  require_contiguous(y, "matmul_nt_act_backward");
  require_contiguous(w, "matmul_nt_act_backward");
  require_contiguous(dz, "matmul_nt_act_backward");
  require_same_shape(g, y, "matmul_nt_act_backward");
  require_same_shape(g, dz, "matmul_nt_act_backward");
  if (g.dim() != 2 || w.dim() != 2 || g.size(1) != w.size(1)) {
    throw std::invalid_argument("matmul_nt_act_backward: incompatible shapes");
  }
  const std::int64_t M = g.size(0), K = g.size(1), N = w.size(0);
  // Same W transpose as matmul_nt(dz, w) — and the same workspace key,
  // so the fused and unfused backward share one cached scratch buffer.
  runtime::WorkspaceCache::Handle wt =
      runtime::WorkspaceCache::instance().acquire("matmul_nt_bt", K * N, w.space());
  const float* pw = w.data();
  float* pwt = wt.data();
  parallel_for(0, N, std::max<std::int64_t>(1, kGrain / std::max<std::int64_t>(1, K)),
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t j = lo; j < hi; ++j) {
                   const float* wrow = pw + j * K;
                   for (std::int64_t k = 0; k < K; ++k) pwt[k * N + j] = wrow[k];
                 }
               });
  Tensor out = Tensor::empty({M, N}, g.space());
  const float* pg = g.data();
  const float* py = y.data();
  float* pd = dz.data();
  float* pc = out.data();
  // One dispatch: each row block materializes its dz rows (epilogue
  // pre-pass) and immediately streams them through the NT panel gemm
  // while they are cache-hot.  dz remains fully written for the
  // downstream matmul_tn/colsum consumers.
  parallel_for(0, M, gemm_grain(K, N), [&](std::int64_t lo, std::int64_t hi) {
    act_backward_range(pg, py, pd, lo * K, hi * K, act);
    gemm_nn_rows(pd, pwt, pc, lo, hi, K, N, nullptr, Act::kIdentity);
  });
  return out;
}

Tensor add_bias(const Tensor& m, const Tensor& bias) {
  require_contiguous(m, "add_bias");
  require_contiguous(bias, "add_bias");
  const auto [rows, cols] = as_matrix(m, "add_bias");
  if (bias.dim() != 1 || bias.size(0) != cols) {
    throw std::invalid_argument("add_bias: bias must be [C]");
  }
  Tensor out = Tensor::empty(m.shape(), m.space());
  const float* pm = m.data();
  const float* pb = bias.data();
  float* po = out.data();
  parallel_for(0, rows, std::max<std::int64_t>(1, kGrain / std::max<std::int64_t>(1, cols)),
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t r = lo; r < hi; ++r) {
                   const float* src = pm + r * cols;
                   float* dst = po + r * cols;
                   for (std::int64_t c = 0; c < cols; ++c) dst[c] = src[c] + pb[c];
                 }
               });
  return out;
}

Tensor mul_colvec(const Tensor& m, const Tensor& col) {
  require_contiguous(m, "mul_colvec");
  require_contiguous(col, "mul_colvec");
  const auto [rows, cols] = as_matrix(m, "mul_colvec");
  if (col.numel() != rows) {
    throw std::invalid_argument("mul_colvec: col must have one entry per row");
  }
  Tensor out = Tensor::empty(m.shape(), m.space());
  const float* pm = m.data();
  const float* pc = col.data();
  float* po = out.data();
  parallel_for(0, rows, std::max<std::int64_t>(1, kGrain / std::max<std::int64_t>(1, cols)),
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t r = lo; r < hi; ++r) {
                   const float s = pc[r];
                   const float* src = pm + r * cols;
                   float* dst = po + r * cols;
                   for (std::int64_t c = 0; c < cols; ++c) dst[c] = src[c] * s;
                 }
               });
  return out;
}

void gru_gates(const Tensor& pre, const Tensor& h, Tensor& r, Tensor& u, Tensor& rh) {
  require_contiguous(pre, "gru_gates");
  require_contiguous(h, "gru_gates");
  require_contiguous(r, "gru_gates");
  require_contiguous(u, "gru_gates");
  require_contiguous(rh, "gru_gates");
  const auto [rows, hidden] = as_matrix(h, "gru_gates");
  if (pre.size(-1) != 2 * hidden || pre.numel() != 2 * h.numel() ||
      r.shape() != h.shape() || u.shape() != h.shape() || rh.shape() != h.shape()) {
    throw std::invalid_argument("gru_gates: pre must be [.., 2H] matching h [.., H]");
  }
  const float* pp = pre.data();
  const float* ph = h.data();
  float* pr = r.data();
  float* pu = u.data();
  float* prh = rh.data();
  parallel_for(0, rows, std::max<std::int64_t>(1, kGrain / std::max<std::int64_t>(1, hidden)),
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t i = lo; i < hi; ++i) {
                   const float* prow = pp + i * 2 * hidden;
                   const std::int64_t off = i * hidden;
                   for (std::int64_t j = 0; j < hidden; ++j) {
                     const float rv = 1.0f / (1.0f + std::exp(-prow[j]));
                     pr[off + j] = rv;
                     pu[off + j] = 1.0f / (1.0f + std::exp(-prow[hidden + j]));
                     prh[off + j] = rv * ph[off + j];
                   }
                 }
               });
}

Tensor gru_state(const Tensor& c, const Tensor& u, const Tensor& h) {
  require_same_shape(c, u, "gru_state");
  require_same_shape(c, h, "gru_state");
  require_contiguous(c, "gru_state");
  require_contiguous(u, "gru_state");
  require_contiguous(h, "gru_state");
  Tensor out = Tensor::empty(c.shape(), c.space());
  const float* pc = c.data();
  const float* pu = u.data();
  const float* ph = h.data();
  float* po = out.data();
  parallel_for(0, c.numel(), kGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) po[i] = pc[i] + pu[i] * (ph[i] - pc[i]);
  });
  return out;
}

double sum(const Tensor& t) {
  require_contiguous(t, "sum");
  const float* p = t.data();
  double acc = 0.0;
  for (std::int64_t i = 0, n = t.numel(); i < n; ++i) acc += p[i];
  return acc;
}

double mean(const Tensor& t) {
  const std::int64_t n = t.numel();
  return n == 0 ? 0.0 : sum(t) / static_cast<double>(n);
}

float max_abs(const Tensor& t) {
  require_contiguous(t, "max_abs");
  const float* p = t.data();
  float m = 0.0f;
  for (std::int64_t i = 0, n = t.numel(); i < n; ++i) m = std::max(m, std::fabs(p[i]));
  return m;
}

Tensor colsum(const Tensor& m) {
  require_contiguous(m, "colsum");
  const auto [rows, cols] = as_matrix(m, "colsum");
  Tensor out = Tensor::zeros({cols}, m.space());
  const float* pm = m.data();
  float* po = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* src = pm + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) po[c] += src[c];
  }
  return out;
}

Tensor rowsum(const Tensor& m) {
  require_contiguous(m, "rowsum");
  const auto [rows, cols] = as_matrix(m, "rowsum");
  Tensor out = Tensor::zeros({rows, 1}, m.space());
  const float* pm = m.data();
  float* po = out.data();
  parallel_for(0, rows, std::max<std::int64_t>(1, kGrain / std::max<std::int64_t>(1, cols)),
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t r = lo; r < hi; ++r) {
                   const float* src = pm + r * cols;
                   float acc = 0.0f;
                   for (std::int64_t c = 0; c < cols; ++c) acc += src[c];
                   po[r] = acc;
                 }
               });
  return out;
}

Tensor concat_lastdim(const std::vector<Tensor>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat_lastdim: no inputs");
  std::int64_t total_c = 0;
  for (const Tensor& p : parts) {
    require_contiguous(p, "concat_lastdim");
    if (p.dim() != parts[0].dim()) {
      throw std::invalid_argument("concat_lastdim: rank mismatch");
    }
    for (int d = 0; d + 1 < p.dim(); ++d) {
      if (p.size(d) != parts[0].size(d)) {
        throw std::invalid_argument("concat_lastdim: leading dim mismatch");
      }
    }
    total_c += p.size(-1);
  }
  Shape out_shape = parts[0].shape();
  out_shape.back() = total_c;
  Tensor out = Tensor::empty(out_shape, parts[0].space());
  const std::int64_t rows = out.numel() / total_c;
  float* po = out.data();
  std::int64_t col_off = 0;
  for (const Tensor& p : parts) {
    const std::int64_t c = p.size(-1);
    const float* pp = p.data();
    parallel_for(0, rows, std::max<std::int64_t>(1, kGrain / std::max<std::int64_t>(1, c)),
                 [&](std::int64_t lo, std::int64_t hi) {
                   for (std::int64_t r = lo; r < hi; ++r) {
                     std::copy(pp + r * c, pp + (r + 1) * c, po + r * total_c + col_off);
                   }
                 });
    col_off += c;
  }
  return out;
}

Tensor softmax_lastdim(const Tensor& t) {
  require_contiguous(t, "softmax_lastdim");
  const auto [rows, cols] = as_matrix(t, "softmax_lastdim");
  Tensor out = Tensor::empty(t.shape(), t.space());
  const float* pt = t.data();
  float* po = out.data();
  parallel_for(0, rows, std::max<std::int64_t>(1, kGrain / std::max<std::int64_t>(1, cols)),
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t r = lo; r < hi; ++r) {
                   const float* src = pt + r * cols;
                   float* dst = po + r * cols;
                   float mx = src[0];
                   for (std::int64_t c = 1; c < cols; ++c) mx = std::max(mx, src[c]);
                   float z = 0.0f;
                   for (std::int64_t c = 0; c < cols; ++c) {
                     dst[c] = std::exp(src[c] - mx);
                     z += dst[c];
                   }
                   const float inv = 1.0f / z;
                   for (std::int64_t c = 0; c < cols; ++c) dst[c] *= inv;
                 }
               });
  return out;
}

double mae(const Tensor& pred, const Tensor& target) {
  require_same_shape(pred, target, "mae");
  const float* pp = pred.data();
  const float* pt = target.data();
  double acc = 0.0;
  const std::int64_t n = pred.numel();
  for (std::int64_t i = 0; i < n; ++i) acc += std::fabs(static_cast<double>(pp[i]) - pt[i]);
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

double mse(const Tensor& pred, const Tensor& target) {
  require_same_shape(pred, target, "mse");
  const float* pp = pred.data();
  const float* pt = target.data();
  double acc = 0.0;
  const std::int64_t n = pred.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(pp[i]) - pt[i];
    acc += d * d;
  }
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "max_abs_diff");
  const Tensor ca = a.contiguous();
  const Tensor cb = b.contiguous();
  const float* pa = ca.data();
  const float* pb = cb.data();
  float m = 0.0f;
  for (std::int64_t i = 0, n = ca.numel(); i < n; ++i) {
    m = std::max(m, std::fabs(pa[i] - pb[i]));
  }
  return m;
}

}  // namespace pgti::ops
