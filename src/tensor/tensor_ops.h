// Threaded compute kernels over contiguous tensors.
//
// These are the forward primitives; autograd composes them into
// differentiable ops.  Kernels parallelize over the leading dimension
// with OpenMP-style parallel_for.  Inputs must be contiguous (views
// from index-batching are made contiguous during batch assembly, which
// is exactly the copy the paper's batch collation performs).
//
// Determinism invariant (DESIGN.md §14): every kernel accumulates each
// output element in an order that is a pure function of the operand
// shapes — never of the thread count, blocking factors, or SIMD width.
// The register-blocked matmul family and the fused epilogues below are
// therefore bit-identical to the retained *_reference kernels, and
// losses stay bit-identical across world sizes, strategies, and
// prefetch depths.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace pgti::ops {

/// Activation applied by the fused matmul/SpMM epilogues.
enum class Act : std::uint8_t { kIdentity, kSigmoid, kTanh, kRelu };

/// Scalar activation — the single definition every fused kernel and its
/// unfused counterpart share, so fused/unfused results are bit-identical.
inline float act_apply(Act act, float x) {
  switch (act) {
    case Act::kSigmoid:
      return 1.0f / (1.0f + std::exp(-x));
    case Act::kTanh:
      return std::tanh(x);
    case Act::kRelu:
      return x > 0.0f ? x : 0.0f;
    case Act::kIdentity:
      break;
  }
  return x;
}

// --- elementwise binary (same shape) ---------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

// --- elementwise with scalar ------------------------------------------
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);

// --- in-place ----------------------------------------------------------
void add_(Tensor& a, const Tensor& b);           ///< a += b
void sub_(Tensor& a, const Tensor& b);           ///< a -= b
void mul_(Tensor& a, const Tensor& b);           ///< a *= b
void scale_(Tensor& a, float s);                 ///< a *= s
void axpy_(float alpha, const Tensor& x, Tensor& y);  ///< y += alpha * x
void sigmoid_(Tensor& t);                        ///< t = sigmoid(t)
void tanh_(Tensor& t);                           ///< t = tanh(t)
void relu_(Tensor& t);                           ///< t = relu(t)
void apply_act_(Tensor& t, Act act);             ///< t = act(t)

// --- output-reusing binary (out preallocated; may alias a or b) --------
// Elementwise chains that would otherwise allocate one tensor per op
// write into an existing buffer instead.
void add_into(const Tensor& a, const Tensor& b, Tensor& out);  ///< out = a + b
void sub_into(const Tensor& a, const Tensor& b, Tensor& out);  ///< out = a - b
void mul_into(const Tensor& a, const Tensor& b, Tensor& out);  ///< out = a * b

// --- unary ---------------------------------------------------------------
Tensor sigmoid(const Tensor& t);
Tensor tanh(const Tensor& t);
Tensor relu(const Tensor& t);
Tensor exp(const Tensor& t);
Tensor abs(const Tensor& t);
Tensor neg(const Tensor& t);

// --- linear algebra -------------------------------------------------------
/// C[M,N] = A[M,K] * B[K,N]  (register-blocked, cache-tiled)
Tensor matmul(const Tensor& a, const Tensor& b);
/// C[M,N] = A[K,M]^T * B[K,N]  (used by matmul backward wrt rhs)
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C[M,N] = A[M,K] * B[N,K]^T  (used by matmul backward wrt lhs)
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// Fused C = act(A * B + bias): the bias add and activation run in the
/// matmul's store epilogue instead of as two extra passes with two
/// intermediate tensors.  Bit-identical to
/// act(add_bias(matmul(a, b), bias)).
Tensor matmul_bias_act(const Tensor& a, const Tensor& b, const Tensor& bias, Act act);

/// Retained naive triple-loop kernel (the pre-optimization baseline).
/// bench_kernels measures the blocked/naive ratio in-run against this;
/// tests assert the blocked kernel is bit-identical to it.
Tensor matmul_reference(const Tensor& a, const Tensor& b);
/// Retained pre-optimization backward kernels (rank-1 update loop and
/// row-row dot products).  Same per-element k-ascending accumulation as
/// the blocked tn/nt — identical bits, pre-PR speed — so the reference
/// training path prices its backward like the code it replaces.
Tensor matmul_tn_reference(const Tensor& a, const Tensor& b);
Tensor matmul_nt_reference(const Tensor& a, const Tensor& b);

/// dz = g ⊙ act'(y), evaluated from the saved forward output y with the
/// exact per-element expressions of the unfused sigmoid/tanh/relu
/// backwards.  Identity returns g itself (aliasing view, no copy).
Tensor act_backward(const Tensor& g, const Tensor& y, Act act);

/// Fused backward epilogue (DESIGN.md §16): computes dz = g ⊙ act'(y)
/// into `dz` (preallocated, g's shape) and returns dA = dz * W^T in one
/// parallel dispatch — each row block runs the activation-backward
/// pre-pass immediately before its NT panel gemm, so dz rows are
/// consumed cache-hot and the separate elementwise pass disappears.
/// Bit-identical to matmul_nt(act_backward(g, y, act), w): the dz
/// expressions and the panel kernel are the same code, per element.
/// `dz` stays fully materialized for the matmul_tn/colsum consumers.
Tensor matmul_nt_act_backward(const Tensor& g, const Tensor& y, Act act,
                              const Tensor& w, Tensor& dz);

/// out[M,C] = m[M,C] + bias[C] broadcast over rows.
Tensor add_bias(const Tensor& m, const Tensor& bias);
/// out[M,C] = m[M,C] * col[M,1] broadcast over columns.
Tensor mul_colvec(const Tensor& m, const Tensor& col);

// --- fused GRU gate kernels -------------------------------------------------
/// One pass over pre [.., 2H] and h [.., H] computing the DCGRU gate
/// block: r = sigmoid(pre[.., :H]), u = sigmoid(pre[.., H:]), rh = r*h.
/// r/u/rh must be preallocated with h's shape.  Replaces
/// sigmoid + 2x slice + mul (four tensors, four passes) with one pass.
void gru_gates(const Tensor& pre, const Tensor& h, Tensor& r, Tensor& u, Tensor& rh);
/// out = c + u*(h - c) in one pass (the GRU state update), without the
/// sub/mul/add temporaries.
Tensor gru_state(const Tensor& c, const Tensor& u, const Tensor& h);

// --- reductions ------------------------------------------------------------
double sum(const Tensor& t);
double mean(const Tensor& t);
float max_abs(const Tensor& t);
/// Column sums: [M,C] -> [C] (bias gradients).
Tensor colsum(const Tensor& m);
/// Row sums: [M,C] -> [M,1].
Tensor rowsum(const Tensor& m);

// --- shape/manipulation -----------------------------------------------------
/// Concatenate along the last dimension; all other dims must match.
Tensor concat_lastdim(const std::vector<Tensor>& parts);

// --- softmax -----------------------------------------------------------------
/// Softmax over the last dimension (numerically stabilized).
Tensor softmax_lastdim(const Tensor& t);

// --- metrics ------------------------------------------------------------------
double mae(const Tensor& pred, const Tensor& target);
double mse(const Tensor& pred, const Tensor& target);
/// Max |a-b| over all elements; handy for exactness tests.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace pgti::ops
