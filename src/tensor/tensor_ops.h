// Threaded compute kernels over contiguous tensors.
//
// These are the forward primitives; autograd composes them into
// differentiable ops.  Kernels parallelize over the leading dimension
// with OpenMP-style parallel_for.  Inputs must be contiguous (views
// from index-batching are made contiguous during batch assembly, which
// is exactly the copy the paper's batch collation performs).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace pgti::ops {

// --- elementwise binary (same shape) ---------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

// --- elementwise with scalar ------------------------------------------
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);

// --- in-place ----------------------------------------------------------
void add_(Tensor& a, const Tensor& b);           ///< a += b
void sub_(Tensor& a, const Tensor& b);           ///< a -= b
void mul_(Tensor& a, const Tensor& b);           ///< a *= b
void scale_(Tensor& a, float s);                 ///< a *= s
void axpy_(float alpha, const Tensor& x, Tensor& y);  ///< y += alpha * x

// --- unary ---------------------------------------------------------------
Tensor sigmoid(const Tensor& t);
Tensor tanh(const Tensor& t);
Tensor relu(const Tensor& t);
Tensor exp(const Tensor& t);
Tensor abs(const Tensor& t);
Tensor neg(const Tensor& t);

// --- linear algebra -------------------------------------------------------
/// C[M,N] = A[M,K] * B[K,N]
Tensor matmul(const Tensor& a, const Tensor& b);
/// C[M,N] = A[K,M]^T * B[K,N]  (used by matmul backward wrt rhs)
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C[M,N] = A[M,K] * B[N,K]^T  (used by matmul backward wrt lhs)
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// out[M,C] = m[M,C] + bias[C] broadcast over rows.
Tensor add_bias(const Tensor& m, const Tensor& bias);
/// out[M,C] = m[M,C] * col[M,1] broadcast over columns.
Tensor mul_colvec(const Tensor& m, const Tensor& col);

// --- reductions ------------------------------------------------------------
double sum(const Tensor& t);
double mean(const Tensor& t);
float max_abs(const Tensor& t);
/// Column sums: [M,C] -> [C] (bias gradients).
Tensor colsum(const Tensor& m);
/// Row sums: [M,C] -> [M,1].
Tensor rowsum(const Tensor& m);

// --- shape/manipulation -----------------------------------------------------
/// Concatenate along the last dimension; all other dims must match.
Tensor concat_lastdim(const std::vector<Tensor>& parts);

// --- softmax -----------------------------------------------------------------
/// Softmax over the last dimension (numerically stabilized).
Tensor softmax_lastdim(const Tensor& t);

// --- metrics ------------------------------------------------------------------
double mae(const Tensor& pred, const Tensor& target);
double mse(const Tensor& pred, const Tensor& target);
/// Max |a-b| over all elements; handy for exactness tests.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace pgti::ops
