// Dense strided N-dimensional float tensor with zero-copy views.
//
// This is the substrate for the paper's central trick: index-batching
// reconstructs spatiotemporal snapshots as *views* of one raw array
// (paper Fig. 4, "NumPy views") instead of materializing overlapping
// copies.  slice()/select()/transpose() alias the parent storage; only
// clone()/contiguous()/to() allocate.  Every allocation is charged to a
// MemoryTracker space so peak-memory experiments are exact.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "runtime/arena.h"
#include "runtime/memory_tracker.h"
#include "runtime/rng.h"

namespace pgti {

/// Tensor extents, outermost dimension first.
using Shape = std::vector<std::int64_t>;

/// Product of extents (1 for rank-0).
std::int64_t shape_numel(const Shape& shape);

/// Human-readable "[a, b, c]".
std::string shape_to_string(const Shape& shape);

/// Reference-counted, memory-tracked flat buffer bound to one space.
/// When a runtime::ArenaScope is active on the allocating thread the
/// buffer is a recycled pool block (DESIGN.md §16); otherwise it comes
/// from the heap, zero-initialized, exactly as the seed allocator did.
class Storage {
 public:
  Storage(std::int64_t numel, MemorySpaceId space);
  ~Storage();

  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  float* data() noexcept { return data_; }
  const float* data() const noexcept { return data_; }
  std::int64_t numel() const noexcept { return numel_; }
  MemorySpaceId space() const noexcept { return space_; }
  /// True when the buffer is an arena pool block rather than a private
  /// heap allocation.
  bool from_arena() const noexcept { return static_cast<bool>(block_); }

 private:
  float* data_ = nullptr;
  runtime::ArenaBlock block_;
  std::int64_t numel_;
  MemorySpaceId space_;
};

/// Value-semantic strided tensor.  Copies share storage (views);
/// clone() deep-copies.
class Tensor {
 public:
  /// Empty (rank-0, no storage) tensor; numel() == 0.
  Tensor() = default;

  // --- factories -----------------------------------------------------
  static Tensor empty(const Shape& shape, MemorySpaceId space = kHostSpace);
  static Tensor zeros(const Shape& shape, MemorySpaceId space = kHostSpace);
  static Tensor full(const Shape& shape, float value, MemorySpaceId space = kHostSpace);
  static Tensor ones(const Shape& shape, MemorySpaceId space = kHostSpace);
  /// N(0, stddev^2) entries.
  static Tensor randn(const Shape& shape, Rng& rng, float stddev = 1.0f,
                      MemorySpaceId space = kHostSpace);
  /// U(lo, hi) entries.
  static Tensor uniform(const Shape& shape, Rng& rng, float lo, float hi,
                        MemorySpaceId space = kHostSpace);
  /// 1-D tensor [0, 1, ..., n-1].
  static Tensor arange(std::int64_t n, MemorySpaceId space = kHostSpace);
  /// 1-D tensor from values.
  static Tensor from_vector(const std::vector<float>& values,
                            MemorySpaceId space = kHostSpace);

  // --- geometry ------------------------------------------------------
  bool defined() const noexcept { return storage_ != nullptr; }
  int dim() const noexcept { return static_cast<int>(shape_.size()); }
  const Shape& shape() const noexcept { return shape_; }
  const Shape& strides() const noexcept { return strides_; }
  std::int64_t size(int d) const;
  std::int64_t numel() const noexcept;
  MemorySpaceId space() const;
  bool is_contiguous() const noexcept;
  /// True when both tensors alias the same underlying storage.
  bool shares_storage_with(const Tensor& other) const noexcept {
    return storage_ != nullptr && storage_ == other.storage_;
  }

  // --- raw access ----------------------------------------------------
  float* data();
  const float* data() const;
  float& at(std::initializer_list<std::int64_t> idx);
  float at(std::initializer_list<std::int64_t> idx) const;
  /// Value of a one-element tensor.
  float item() const;

  // --- views (zero-copy; alias this tensor's storage) -----------------
  /// Subrange [start, start+length) along `d`; same rank.
  Tensor slice(int d, std::int64_t start, std::int64_t length) const;
  /// Index `idx` along `d`; rank reduced by one.
  Tensor select(int d, std::int64_t idx) const;
  /// Swapped dims view.
  Tensor transpose(int d0, int d1) const;
  /// Same data, new shape; requires contiguity (throws otherwise).
  Tensor reshape(const Shape& shape) const;

  // --- copies ----------------------------------------------------------
  /// Deep contiguous copy in this tensor's space.
  Tensor clone() const;
  /// Contiguous version (clone when strided, self when already dense).
  Tensor contiguous() const;
  /// Deep copy into another memory space (raw byte movement only; the
  /// device::TransferEngine wraps this to model PCIe time).
  Tensor to(MemorySpaceId space) const;

  // --- mutation --------------------------------------------------------
  void fill_(float value);
  /// Elementwise copy from `src` (same shape; either side may be strided).
  void copy_from(const Tensor& src);

  /// Bytes held by the underlying storage (shared across views).
  std::int64_t storage_bytes() const;

 private:
  Tensor(std::shared_ptr<Storage> storage, std::int64_t offset, Shape shape,
         Shape strides);

  static Shape contiguous_strides(const Shape& shape);
  std::int64_t linear_index(std::initializer_list<std::int64_t> idx) const;

  std::shared_ptr<Storage> storage_;
  std::int64_t offset_ = 0;
  Shape shape_;
  Shape strides_;
};

}  // namespace pgti
