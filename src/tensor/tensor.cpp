#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace pgti {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) n *= d;
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Storage::Storage(std::int64_t numel, MemorySpaceId space)
    : numel_(numel), space_(space) {
  runtime::TensorArena* arena = runtime::current_arena();
  if (arena != nullptr && numel > 0) {
    // acquire() charges the tracker itself (heap or pool-served) and
    // throws OutOfMemoryError before taking a block when over limit.
    block_ = arena->acquire(numel, space);
    data_ = block_.data;
    return;
  }
  const std::size_t bytes = static_cast<std::size_t>(numel) * sizeof(float);
  MemoryTracker::instance().on_alloc(space, bytes);  // may throw OOM
  try {
    data_ = new float[static_cast<std::size_t>(numel)]();
  } catch (...) {
    MemoryTracker::instance().on_free(space, bytes);
    throw;
  }
}

Storage::~Storage() {
  MemoryTracker::instance().on_free(
      space_, static_cast<std::size_t>(numel_) * sizeof(float));
  if (block_) {
    runtime::TensorArena::release(block_);
  } else {
    delete[] data_;
  }
}

Tensor::Tensor(std::shared_ptr<Storage> storage, std::int64_t offset, Shape shape,
               Shape strides)
    : storage_(std::move(storage)),
      offset_(offset),
      shape_(std::move(shape)),
      strides_(std::move(strides)) {}

Shape Tensor::contiguous_strides(const Shape& shape) {
  Shape strides(shape.size());
  std::int64_t acc = 1;
  for (int d = static_cast<int>(shape.size()) - 1; d >= 0; --d) {
    strides[static_cast<std::size_t>(d)] = acc;
    acc *= shape[static_cast<std::size_t>(d)];
  }
  return strides;
}

Tensor Tensor::empty(const Shape& shape, MemorySpaceId space) {
  for (std::int64_t d : shape) {
    if (d < 0) throw std::invalid_argument("negative dimension in shape");
  }
  auto storage = std::make_shared<Storage>(shape_numel(shape), space);
  return Tensor(std::move(storage), 0, shape, contiguous_strides(shape));
}

Tensor Tensor::zeros(const Shape& shape, MemorySpaceId space) {
  Tensor t = empty(shape, space);
  std::memset(t.data(), 0, static_cast<std::size_t>(t.numel()) * sizeof(float));
  return t;
}

Tensor Tensor::full(const Shape& shape, float value, MemorySpaceId space) {
  Tensor t = empty(shape, space);
  t.fill_(value);
  return t;
}

Tensor Tensor::ones(const Shape& shape, MemorySpaceId space) {
  return full(shape, 1.0f, space);
}

Tensor Tensor::randn(const Shape& shape, Rng& rng, float stddev, MemorySpaceId space) {
  Tensor t = empty(shape, space);
  float* p = t.data();
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng.normal()) * stddev;
  }
  return t;
}

Tensor Tensor::uniform(const Shape& shape, Rng& rng, float lo, float hi,
                       MemorySpaceId space) {
  Tensor t = empty(shape, space);
  float* p = t.data();
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::arange(std::int64_t n, MemorySpaceId space) {
  Tensor t = empty({n}, space);
  float* p = t.data();
  for (std::int64_t i = 0; i < n; ++i) p[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::from_vector(const std::vector<float>& values, MemorySpaceId space) {
  Tensor t = empty({static_cast<std::int64_t>(values.size())}, space);
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

std::int64_t Tensor::size(int d) const {
  if (d < 0) d += dim();
  if (d < 0 || d >= dim()) throw std::out_of_range("Tensor::size: bad dim");
  return shape_[static_cast<std::size_t>(d)];
}

std::int64_t Tensor::numel() const noexcept {
  if (!storage_) return 0;
  return shape_numel(shape_);
}

MemorySpaceId Tensor::space() const {
  if (!storage_) throw std::logic_error("Tensor::space on undefined tensor");
  return storage_->space();
}

bool Tensor::is_contiguous() const noexcept {
  if (!storage_) return true;
  std::int64_t acc = 1;
  for (int d = dim() - 1; d >= 0; --d) {
    const auto dd = static_cast<std::size_t>(d);
    if (shape_[dd] == 1) continue;  // stride irrelevant for singleton dims
    if (strides_[dd] != acc) return false;
    acc *= shape_[dd];
  }
  return true;
}

float* Tensor::data() {
  if (!storage_) throw std::logic_error("Tensor::data on undefined tensor");
  return storage_->data() + offset_;
}

const float* Tensor::data() const {
  if (!storage_) throw std::logic_error("Tensor::data on undefined tensor");
  return storage_->data() + offset_;
}

std::int64_t Tensor::linear_index(std::initializer_list<std::int64_t> idx) const {
  if (static_cast<int>(idx.size()) != dim()) {
    throw std::invalid_argument("Tensor::at: rank mismatch");
  }
  std::int64_t off = 0;
  int d = 0;
  for (std::int64_t i : idx) {
    const auto dd = static_cast<std::size_t>(d);
    if (i < 0 || i >= shape_[dd]) throw std::out_of_range("Tensor::at: index out of range");
    off += i * strides_[dd];
    ++d;
  }
  return off;
}

float& Tensor::at(std::initializer_list<std::int64_t> idx) {
  return data()[linear_index(idx)];
}

float Tensor::at(std::initializer_list<std::int64_t> idx) const {
  return data()[linear_index(idx)];
}

float Tensor::item() const {
  if (numel() != 1) throw std::logic_error("Tensor::item: numel != 1");
  return data()[0];
}

Tensor Tensor::slice(int d, std::int64_t start, std::int64_t length) const {
  if (d < 0) d += dim();
  if (d < 0 || d >= dim()) throw std::out_of_range("Tensor::slice: bad dim");
  const auto dd = static_cast<std::size_t>(d);
  if (start < 0 || length < 0 || start + length > shape_[dd]) {
    throw std::out_of_range("Tensor::slice: range out of bounds");
  }
  Shape new_shape = shape_;
  new_shape[dd] = length;
  return Tensor(storage_, offset_ + start * strides_[dd], std::move(new_shape),
                strides_);
}

Tensor Tensor::select(int d, std::int64_t idx) const {
  if (d < 0) d += dim();
  if (d < 0 || d >= dim()) throw std::out_of_range("Tensor::select: bad dim");
  const auto dd = static_cast<std::size_t>(d);
  if (idx < 0 || idx >= shape_[dd]) {
    throw std::out_of_range("Tensor::select: index out of bounds");
  }
  Shape new_shape;
  Shape new_strides;
  for (int i = 0; i < dim(); ++i) {
    if (i == d) continue;
    new_shape.push_back(shape_[static_cast<std::size_t>(i)]);
    new_strides.push_back(strides_[static_cast<std::size_t>(i)]);
  }
  return Tensor(storage_, offset_ + idx * strides_[dd], std::move(new_shape),
                std::move(new_strides));
}

Tensor Tensor::transpose(int d0, int d1) const {
  if (d0 < 0) d0 += dim();
  if (d1 < 0) d1 += dim();
  if (d0 < 0 || d0 >= dim() || d1 < 0 || d1 >= dim()) {
    throw std::out_of_range("Tensor::transpose: bad dims");
  }
  Shape new_shape = shape_;
  Shape new_strides = strides_;
  std::swap(new_shape[static_cast<std::size_t>(d0)], new_shape[static_cast<std::size_t>(d1)]);
  std::swap(new_strides[static_cast<std::size_t>(d0)], new_strides[static_cast<std::size_t>(d1)]);
  return Tensor(storage_, offset_, std::move(new_shape), std::move(new_strides));
}

Tensor Tensor::reshape(const Shape& shape) const {
  if (shape_numel(shape) != numel()) {
    throw std::invalid_argument("Tensor::reshape: numel mismatch " +
                                shape_to_string(shape_) + " -> " + shape_to_string(shape));
  }
  if (!is_contiguous()) {
    throw std::logic_error("Tensor::reshape requires a contiguous tensor; call contiguous()");
  }
  return Tensor(storage_, offset_, shape, contiguous_strides(shape));
}

namespace {

// Generic strided elementwise copy dst <- src (same shape).
void copy_recursive(float* dst, const Shape& dst_strides, const float* src,
                    const Shape& src_strides, const Shape& shape, int d) {
  const auto dd = static_cast<std::size_t>(d);
  const std::int64_t n = shape[dd];
  if (d == static_cast<int>(shape.size()) - 1) {
    const std::int64_t ds = dst_strides[dd];
    const std::int64_t ss = src_strides[dd];
    if (ds == 1 && ss == 1) {
      std::memcpy(dst, src, static_cast<std::size_t>(n) * sizeof(float));
    } else {
      for (std::int64_t i = 0; i < n; ++i) dst[i * ds] = src[i * ss];
    }
    return;
  }
  for (std::int64_t i = 0; i < n; ++i) {
    copy_recursive(dst + i * dst_strides[dd], dst_strides, src + i * src_strides[dd],
                   src_strides, shape, d + 1);
  }
}

}  // namespace

Tensor Tensor::clone() const {
  if (!storage_) return Tensor();
  Tensor out = Tensor::empty(shape_, storage_->space());
  out.copy_from(*this);
  return out;
}

Tensor Tensor::contiguous() const {
  if (is_contiguous()) return *this;
  return clone();
}

Tensor Tensor::to(MemorySpaceId space) const {
  if (!storage_) return Tensor();
  Tensor out = Tensor::empty(shape_, space);
  out.copy_from(*this);
  return out;
}

void Tensor::fill_(float value) {
  if (!storage_) return;
  if (is_contiguous()) {
    float* p = data();
    std::fill(p, p + numel(), value);
    return;
  }
  // Strided fill via copy from a broadcast would be overkill; iterate.
  Tensor tmp = Tensor::full(shape_, value, storage_->space());
  copy_from(tmp);
}

void Tensor::copy_from(const Tensor& src) {
  if (shape_ != src.shape_) {
    throw std::invalid_argument("Tensor::copy_from: shape mismatch " +
                                shape_to_string(shape_) + " vs " +
                                shape_to_string(src.shape_));
  }
  if (numel() == 0) return;
  if (dim() == 0) {
    data()[0] = src.data()[0];
    return;
  }
  copy_recursive(data(), strides_, src.data(), src.strides_, shape_, 0);
}

std::int64_t Tensor::storage_bytes() const {
  if (!storage_) return 0;
  return storage_->numel() * static_cast<std::int64_t>(sizeof(float));
}

}  // namespace pgti
