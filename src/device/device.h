// Simulated accelerator devices.
//
// This environment has no GPUs, but the paper's GPU experiments
// (GPU-index-batching, Table 4 / Fig 6) measure *data placement and
// movement*, not CUDA arithmetic: how much memory lives on the device,
// and how many host<->device transfers the workflow performs.  A
// "device" here is therefore (a) a tracked memory space with its own
// capacity, plus (b) a TransferEngine that byte-counts and time-models
// every crossing of the (simulated) PCIe bus.  Kernels execute on the
// host regardless of which space a tensor lives in.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/memory_tracker.h"
#include "runtime/timer.h"
#include "tensor/tensor.h"

namespace pgti {

/// Bandwidth/latency model of the host<->device interconnect.
/// Defaults approximate PCIe gen4 x16 (Polaris A100s).
struct PcieModel {
  double bandwidth_bytes_per_s = 16.0e9;
  double latency_s = 10.0e-6;

  double transfer_seconds(std::int64_t bytes) const {
    return latency_s + static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }
};

/// Cumulative transfer ledger for one device.
struct TransferStats {
  std::uint64_t h2d_count = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_count = 0;
  std::uint64_t d2h_bytes = 0;
  double modeled_seconds = 0.0;
};

/// One simulated accelerator: a named memory space + transfer ledger.
class SimDevice {
 public:
  SimDevice(std::string name, std::size_t capacity_bytes);

  const std::string& name() const noexcept { return name_; }
  MemorySpaceId space() const noexcept { return space_; }

  /// Sets device memory capacity (0 = unlimited), e.g. 40 GB for A100.
  void set_capacity(std::size_t bytes);

  /// Copies `t` to this device, charging the PCIe model.
  Tensor upload(const Tensor& t);
  /// Copies `t` (resident on this device) back to host memory.
  Tensor download(const Tensor& t);
  /// Copies host tensor `src` into pre-allocated device tensor `dst`
  /// (same shape), charging the PCIe model.  Used by batch staging.
  void upload_into(const Tensor& src, Tensor& dst);

  TransferStats stats() const;
  void reset_stats();

  const PcieModel& pcie() const noexcept { return pcie_; }
  void set_pcie(const PcieModel& model) { pcie_ = model; }

 private:
  void record(bool h2d, std::int64_t bytes);

  std::string name_;
  MemorySpaceId space_;
  PcieModel pcie_;
  mutable std::mutex mu_;
  TransferStats stats_;
};

/// Registry of simulated devices ("gpu0", "gpu1", ...).  Devices are
/// created on first use and persist for the process lifetime, matching
/// how MemoryTracker spaces behave.
class DeviceManager {
 public:
  static DeviceManager& instance();

  /// Returns (creating if needed) simulated GPU `index`.
  SimDevice& gpu(int index);

  int device_count() const;

 private:
  DeviceManager() = default;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SimDevice>> gpus_;
};

}  // namespace pgti
