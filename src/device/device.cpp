#include "device/device.h"

namespace pgti {

SimDevice::SimDevice(std::string name, std::size_t capacity_bytes)
    : name_(std::move(name)),
      space_(MemoryTracker::instance().register_space(name_)) {
  MemoryTracker::instance().set_limit(space_, capacity_bytes);
}

void SimDevice::set_capacity(std::size_t bytes) {
  MemoryTracker::instance().set_limit(space_, bytes);
}

Tensor SimDevice::upload(const Tensor& t) {
  Tensor out = t.to(space_);
  record(/*h2d=*/true, out.numel() * static_cast<std::int64_t>(sizeof(float)));
  return out;
}

Tensor SimDevice::download(const Tensor& t) {
  Tensor out = t.to(kHostSpace);
  record(/*h2d=*/false, out.numel() * static_cast<std::int64_t>(sizeof(float)));
  return out;
}

void SimDevice::upload_into(const Tensor& src, Tensor& dst) {
  dst.copy_from(src);
  record(/*h2d=*/true, src.numel() * static_cast<std::int64_t>(sizeof(float)));
}

void SimDevice::record(bool h2d, std::int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (h2d) {
    ++stats_.h2d_count;
    stats_.h2d_bytes += static_cast<std::uint64_t>(bytes);
  } else {
    ++stats_.d2h_count;
    stats_.d2h_bytes += static_cast<std::uint64_t>(bytes);
  }
  stats_.modeled_seconds += pcie_.transfer_seconds(bytes);
}

TransferStats SimDevice::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SimDevice::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = TransferStats{};
}

DeviceManager& DeviceManager::instance() {
  static DeviceManager mgr;
  return mgr;
}

SimDevice& DeviceManager::gpu(int index) {
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(gpus_.size()) <= index) {
    const int i = static_cast<int>(gpus_.size());
    gpus_.push_back(std::make_unique<SimDevice>("gpu" + std::to_string(i),
                                                /*capacity=*/0));
  }
  return *gpus_[static_cast<std::size_t>(index)];
}

int DeviceManager::device_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(gpus_.size());
}

}  // namespace pgti
