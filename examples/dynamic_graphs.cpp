// Dynamic graphs with temporal signal (paper §7 future work): the road
// network's topology changes over time (closures/incidents), and the
// DCGRU consumes each step with that step's own diffusion supports —
// index-batching still serves zero-copy snapshots with a span of graph
// references instead of duplicated per-window graph lists.
//
//   ./build/examples/dynamic_graphs
#include <cstdio>
#include <map>

#include "core/pgt_i.h"
#include "data/dynamic_graph.h"
#include "optim/optim.h"

using namespace pgti;

int main() {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kMetrLa).scaled(16);
  spec.horizon = 6;
  spec.batch_size = 1;  // per-step graphs differ across snapshots

  auto series = data::generate_dynamic_graph_signal(spec, /*seed=*/3,
                                                    /*rewires_per_period=*/6);
  data::DynamicIndexDataset dataset(std::move(series), spec);
  std::printf("dynamic series: %lld snapshots, %zu distinct graph versions\n",
              static_cast<long long>(dataset.num_snapshots()),
              dataset.distinct_graphs());

  // Cache diffusion supports per distinct graph version.
  std::map<const Csr*, nn::GraphSupports> support_cache;
  auto supports_for = [&](const std::shared_ptr<const Csr>& g) -> const nn::GraphSupports& {
    auto it = support_cache.find(g.get());
    if (it == support_cache.end()) {
      it = support_cache
               .emplace(g.get(), nn::GraphSupports::from(dual_random_walk_supports(*g)))
               .first;
    }
    return it->second;
  };

  const auto first = dataset.get(0);
  const nn::GraphSupports& base = supports_for(first.graphs[0]);
  Rng rng(9);
  nn::DCGRUCell cell(spec.features, 16, base, /*K=*/1, rng);
  nn::Linear readout(16, 1, rng);
  std::vector<Variable> params = cell.parameters();
  for (Variable& p : readout.parameters()) params.push_back(p);
  optim::Adam::Options aopt;
  aopt.lr = 3e-3f;
  optim::Adam opt(params, aopt);

  const auto& splits = dataset.splits();
  const double sigma = dataset.scaler().stddev;
  for (int epoch = 0; epoch < 3; ++epoch) {
    double loss_sum = 0.0;
    int count = 0;
    // Stride across the training range so the run crosses several
    // topology versions within each epoch.
    const std::int64_t stride =
        std::max<std::int64_t>(1, (splits.train_end - splits.train_begin) / 40);
    for (std::int64_t i = splits.train_begin; i < splits.train_end; i += stride) {
      const auto snap = dataset.get(i);
      Variable h(Tensor::zeros({1, spec.nodes, 16}), false);
      Variable loss;
      for (std::int64_t t = 0; t < spec.horizon; ++t) {
        Tensor xt =
            snap.x.select(0, t).contiguous().reshape({1, spec.nodes, spec.features});
        h = cell.forward(Variable(xt, false),
                         h, supports_for(snap.graphs[static_cast<std::size_t>(t)]));
        Variable pred = ag::reshape(
            readout.forward(ag::reshape(h, {spec.nodes, 16})), {1, spec.nodes, 1});
        Tensor yt = snap.y.select(0, t).slice(-1, 0, 1).contiguous().reshape(
            {1, spec.nodes, 1});
        Variable l = ag::mae_loss(pred, yt);
        loss = t == 0 ? l : ag::add(loss, l);
      }
      loss = ag::mul_scalar(loss, 1.0f / static_cast<float>(spec.horizon));
      cell.zero_grad();
      readout.zero_grad();
      loss.backward();
      opt.step();
      loss_sum += loss.value().item();
      ++count;
    }
    std::printf("epoch %d | train MAE %.3f mph over evolving topology\n", epoch,
                loss_sum / count * sigma);
  }
  std::printf("support cache holds %zu graph versions (shared across windows)\n",
              support_cache.size());
  return 0;
}
