// Larger-than-memory training (paper §5.4): when even one
// index-batched copy per worker exceeds node memory, generalized-
// distributed-index-batching partitions the RAW entries across
// workers and switches to batch-level shuffling, keeping every access
// partition-local.
//
// The program first measures both strategies' true peak memory, then
// re-runs them under a cap set between the two peaks: the full-copy
// strategy OOMs, the partitioned one trains.
//
//   ./build/examples/larger_than_memory
#include <cstdio>

#include "core/pgt_i.h"

using namespace pgti;

namespace {

core::DistConfig make_config(core::DistMode mode) {
  core::DistConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPems).scaled(32);
  cfg.spec.horizon = 6;
  cfg.spec.batch_size = 4;
  cfg.mode = mode;
  cfg.world = 4;
  cfg.epochs = 2;
  cfg.hidden_dim = 8;
  cfg.diffusion_steps = 1;
  cfg.max_batches_per_epoch = 5;
  cfg.max_val_batches = 1;
  return cfg;
}

}  // namespace

int main() {
  const auto dataset_bytes = static_cast<std::size_t>(
      data::index_batching_bytes(make_config(core::DistMode::kDistributedIndex).spec,
                                 sizeof(float)));
  std::printf("index-batched dataset: %s (x4 workers = %s for full copies)\n",
              format_bytes(static_cast<double>(dataset_bytes)).c_str(),
              format_bytes(static_cast<double>(dataset_bytes) * 4).c_str());

  // Phase 1: measure true peaks, uncapped.
  core::DistResult full =
      core::DistTrainer(make_config(core::DistMode::kDistributedIndex)).run();
  core::DistResult part =
      core::DistTrainer(make_config(core::DistMode::kGeneralizedIndex)).run();
  std::printf("peak memory: full copy per worker %s | partitioned %s\n",
              format_bytes(static_cast<double>(full.peak_host_bytes)).c_str(),
              format_bytes(static_cast<double>(part.peak_host_bytes)).c_str());

  // Phase 2: cap the node between the two peaks.
  auto& tracker = MemoryTracker::instance();
  const std::size_t headroom = (full.peak_host_bytes + part.peak_host_bytes) / 2;
  tracker.set_limit(kHostSpace, tracker.current(kHostSpace) + headroom);
  std::printf("node memory capped at +%s\n",
              format_bytes(static_cast<double>(headroom)).c_str());

  try {
    core::DistTrainer(make_config(core::DistMode::kDistributedIndex)).run();
    std::printf("unexpected: full-copy mode fit under the cap\n");
  } catch (const OutOfMemoryError& e) {
    std::printf("distributed-index (full copy per worker): OOM as expected\n  (%s)\n",
                e.what());
  }

  core::DistResult capped =
      core::DistTrainer(make_config(core::DistMode::kGeneralizedIndex)).run();
  tracker.set_limit(kHostSpace, 0);

  std::printf("generalized-distributed-index-batching under the same cap:\n");
  for (const auto& em : capped.curve) {
    std::printf("  epoch %d | train MAE %.3f | val MAE %.3f\n", em.epoch, em.train_mae,
                em.val_mae);
  }
  std::printf("  peak %s, remote fetches: %llu (batch-level shuffle stays local)\n",
              format_bytes(static_cast<double>(capped.peak_host_bytes)).c_str(),
              static_cast<unsigned long long>(capped.store.remote_snapshots));
  return 0;
}
