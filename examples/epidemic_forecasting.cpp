// Epidemiological forecasting: A3T-GCN (attention temporal GCN) on a
// Chickenpox-Hungary-like case-count workload — the paper's evidence
// that index-batching generalizes across the sequence-to-sequence
// model family (§5.5).
//
//   ./build/examples/epidemic_forecasting
#include <cstdio>

#include "core/pgt_i.h"

using namespace pgti;

int main() {
  core::TrainConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kChickenpoxHungary);
  cfg.spec.batch_size = 4;  // 522 weekly entries only (paper §5)
  cfg.model = core::ModelKind::kA3tgcn;
  cfg.mode = core::BatchingMode::kIndex;
  cfg.epochs = 8;
  cfg.hidden_dim = 16;
  cfg.lr = 4e-3f;
  cfg.max_batches_per_epoch = 30;
  cfg.max_val_batches = 8;
  cfg.use_device = false;  // tiny dataset: plain host training

  std::printf("A3T-GCN on %s: %lld counties, %lld weekly entries, horizon %lld\n",
              cfg.spec.name.c_str(), static_cast<long long>(cfg.spec.nodes),
              static_cast<long long>(cfg.spec.entries),
              static_cast<long long>(cfg.spec.horizon));

  core::TrainResult r = core::Trainer(cfg).run();
  for (const auto& em : r.curve) {
    std::printf("epoch %2d | train MAE %7.3f cases | val MAE %7.3f cases\n", em.epoch,
                em.train_mae, em.val_mae);
  }
  std::printf("test MSE (normalized): %.4f\n", r.final_test_mse);
  std::printf("peak memory: %s (index-batching holds ONE copy of the series)\n",
              format_bytes(static_cast<double>(r.peak_host_bytes)).c_str());
  return 0;
}
