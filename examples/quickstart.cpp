// Quickstart: train a PGT-DCRNN with index-batching on a scaled
// PeMS-BAY-like workload and print the convergence curve plus the
// memory/transfer ledger that makes index-batching worth using.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/pgt_i.h"

int main() {
  using namespace pgti;

  core::TrainConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  cfg.spec.horizon = 6;           // shorter windows keep the demo snappy
  cfg.spec.batch_size = 16;
  cfg.model = core::ModelKind::kPgtDcrnn;
  cfg.mode = core::BatchingMode::kIndex;  // the paper's contribution
  cfg.epochs = 3;
  cfg.hidden_dim = 16;
  cfg.max_batches_per_epoch = 20;
  cfg.max_val_batches = 5;

  std::printf("PGT-I quickstart: %s (%lld nodes, %lld entries, horizon %lld)\n",
              cfg.spec.name.c_str(), static_cast<long long>(cfg.spec.nodes),
              static_cast<long long>(cfg.spec.entries),
              static_cast<long long>(cfg.spec.horizon));

  core::TrainResult r = core::Trainer(cfg).run();

  std::printf("model parameters : %lld\n", static_cast<long long>(r.model_parameters));
  std::printf("preprocess       : %.2f s\n", r.preprocess_seconds);
  std::printf("train            : %.2f s\n", r.train_seconds);
  std::printf("peak host memory : %s\n", format_bytes(static_cast<double>(r.peak_host_bytes)).c_str());
  std::printf("peak gpu memory  : %s\n", format_bytes(static_cast<double>(r.peak_device_bytes)).c_str());
  std::printf("h2d transfers    : %llu (%s)\n",
              static_cast<unsigned long long>(r.transfers.h2d_count),
              format_bytes(static_cast<double>(r.transfers.h2d_bytes)).c_str());
  for (const core::EpochMetrics& em : r.curve) {
    std::printf("epoch %2d | train MAE %.4f | val MAE %.4f | %.2f s\n", em.epoch,
                em.train_mae, em.val_mae, em.wall_seconds);
  }
  std::printf("best val MAE     : %.4f (original units)\n", r.best_val_mae);
  return 0;
}
