// Multi-process DDP over the TCP transport: forks world real OS
// processes — no shared address space — connects them into a
// SocketTransport full mesh, trains a small PGT-I job via
// DistTrainer::run_rank, and proves the transport swap costs zero
// determinism by comparing every loss byte against the in-process
// thread cluster (DESIGN.md §15).
//
//   ./build/examples/socket_ddp            # one narrated run, world=4
//   ./build/examples/socket_ddp --smoke    # CI sweep: {distributed-index,
//                                          #   generalized-index} x prefetch
//                                          #   {0,2} x world {4,1}; exits
//                                          #   nonzero on any byte mismatch
//
// Launch mechanics (the part a real torchrun-style launcher would do):
// the parent binds the rendezvous listener BEFORE forking and passes
// the inherited fd to the rank-0 child, so no child can race the bind;
// every other rank dials the advertised port.  Rank 0's child streams
// its loss curve back through a pipe as raw IEEE-754 bytes — hex-exact,
// no decimal round trip — and the parent memcmps it against the
// reference curve from DistTrainer::run().
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/pgt_i.h"
#include "dist/transport_socket.h"

using namespace pgti;

namespace {

core::DistConfig job_config(core::DistMode mode, int world, int prefetch) {
  core::DistConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(48);
  cfg.spec.horizon = 4;
  cfg.spec.batch_size = 8;
  cfg.mode = mode;
  cfg.world = world;
  cfg.epochs = 2;
  cfg.hidden_dim = 10;
  cfg.diffusion_steps = 1;
  cfg.lr = 2e-3f;
  cfg.max_batches_per_epoch = 4;
  cfg.max_val_batches = 2;
  cfg.prefetch_depth = prefetch;
  cfg.seed = 61;
  return cfg;
}

/// Rank-0 child -> parent wire: epoch count, then per epoch the raw
/// bytes of (train_mae, val_mae).
std::vector<double> curve_doubles(const core::DistResult& r) {
  std::vector<double> flat;
  flat.reserve(r.curve.size() * 2);
  for (const auto& em : r.curve) {
    flat.push_back(em.train_mae);
    flat.push_back(em.val_mae);
  }
  return flat;
}

bool write_exact(int fd, const void* data, std::size_t bytes) {
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::write(fd, p, bytes);
    if (n <= 0) return false;
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_exact(int fd, void* data, std::size_t bytes) {
  char* p = static_cast<char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::read(fd, p, bytes);
    if (n <= 0) return false;
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

/// One rank's process body: rendezvous, train, report, _exit.  Never
/// returns.  Uses _exit so the child cannot re-flush stdio buffers it
/// inherited from the parent.
[[noreturn]] void rank_process(const core::DistConfig& cfg, int rank,
                               std::uint16_t port, int listen_fd,
                               int report_fd) {
  int code = 0;
  // Scope the transport so its destructor runs before _exit: the
  // destructor drains and joins the per-peer writer threads, which is
  // what guarantees the final sync's RELEASE/ARRIVE frames reach slower
  // peers before this process's sockets vanish.
  try {
    dist::SocketOptions opt;
    opt.rank = rank;
    opt.world = cfg.world;
    opt.port = port;
    opt.listen_fd = rank == 0 ? listen_fd : -1;
    dist::SocketTransport transport(opt);
    dist::CommContext context;  // per-process model/ledger facade
    dist::Communicator comm(transport, context);

    core::DistResult r = core::DistTrainer(cfg).run_rank(comm);

    if (rank == 0) {
      const std::vector<double> flat = curve_doubles(r);
      const std::uint64_t n = flat.size();
      if (!write_exact(report_fd, &n, sizeof(n)) ||
          !write_exact(report_fd, flat.data(), n * sizeof(double))) {
        std::fprintf(stderr, "[rank 0] report pipe failed\n");
        code = 3;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[rank %d] %s\n", rank, e.what());
    code = 2;
  }
  ::_exit(code);
}

/// Forks cfg.world rank processes, joins them, and returns rank 0's
/// loss curve.  Throws on any nonzero child exit.
std::vector<double> run_multiprocess(const core::DistConfig& cfg) {
  auto [listen_fd, port] =
      dist::socket_listen("127.0.0.1", 0, cfg.world);
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) throw std::runtime_error("pipe() failed");

  std::vector<pid_t> children;
  for (int rank = 0; rank < cfg.world; ++rank) {
    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("fork() failed");
    if (pid == 0) {
      ::close(pipe_fds[0]);
      if (rank != 0) ::close(listen_fd);
      rank_process(cfg, rank, port, listen_fd, pipe_fds[1]);
    }
    children.push_back(pid);
  }
  ::close(listen_fd);
  ::close(pipe_fds[1]);

  std::uint64_t n = 0;
  std::vector<double> flat;
  const bool got_header = read_exact(pipe_fds[0], &n, sizeof(n));
  if (got_header) {
    flat.resize(n);
    if (!read_exact(pipe_fds[0], flat.data(), n * sizeof(double))) {
      flat.clear();
    }
  }
  ::close(pipe_fds[0]);

  bool all_ok = true;
  for (std::size_t i = 0; i < children.size(); ++i) {
    int status = 0;
    ::waitpid(children[i], &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "rank %zu exited abnormally (status %d)\n", i,
                   status);
      all_ok = false;
    }
  }
  if (!all_ok || flat.empty()) {
    throw std::runtime_error("multi-process run failed");
  }
  return flat;
}

const char* mode_name(core::DistMode mode) {
  switch (mode) {
    case core::DistMode::kDistributedIndex:
      return "distributed-index";
    case core::DistMode::kGeneralizedIndex:
      return "generalized-index";
    default:
      return "?";
  }
}

/// Returns true when the multi-process curve is byte-identical to the
/// in-process reference for this config.
bool check_one(core::DistMode mode, int world, int prefetch, bool verbose) {
  const core::DistConfig cfg = job_config(mode, world, prefetch);
  const core::DistResult ref = core::DistTrainer(cfg).run();
  const std::vector<double> expect = curve_doubles(ref);
  std::vector<double> got;
  try {
    got = run_multiprocess(cfg);
  } catch (const std::exception& e) {
    std::printf("  %-18s world=%d prefetch=%d : FAILED (%s)\n",
                mode_name(mode), world, prefetch, e.what());
    return false;
  }

  const bool same =
      expect.size() == got.size() &&
      std::memcmp(expect.data(), got.data(),
                  expect.size() * sizeof(double)) == 0;
  std::printf("  %-18s world=%d prefetch=%d : %s\n", mode_name(mode), world,
              prefetch, same ? "bit-identical" : "MISMATCH");
  if (verbose || !same) {
    for (std::size_t e = 0; e * 2 + 1 < got.size(); ++e) {
      std::printf("    epoch %zu  threads train %a | procs train %a\n", e,
                  expect[e * 2], got[e * 2]);
    }
  }
  return same;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";

  if (!smoke) {
    std::printf(
        "DDP across %d OS processes (fork + TCP mesh) vs %d threads\n", 4, 4);
    return check_one(core::DistMode::kDistributedIndex, 4, 2, /*verbose=*/true)
               ? 0
               : 1;
  }

  // CI smoke: every strategy/prefetch combination the acceptance bar
  // names, at world=4 (real 4-process mesh) and world=1 (degenerate
  // single-process rendezvous), must be byte-identical to the
  // in-process thread cluster.
  std::printf("socket_ddp --smoke: multi-process vs in-process loss curves\n");
  int failures = 0;
  for (core::DistMode mode :
       {core::DistMode::kDistributedIndex, core::DistMode::kGeneralizedIndex}) {
    for (int world : {4, 1}) {
      for (int prefetch : {0, 2}) {
        if (!check_one(mode, world, prefetch, /*verbose=*/false)) ++failures;
      }
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "%d combination(s) diverged\n", failures);
    return 1;
  }
  std::printf("all combinations bit-identical across the transport swap\n");
  return 0;
}
