// Traffic forecasting (the paper's headline domain): train PGT-DCRNN
// on a PeMS-BAY-like workload with GPU-index-batching, handle missing
// sensor readings with the masked MAE loss, decay the learning rate,
// and checkpoint the best model.
//
//   ./build/examples/traffic_forecasting
#include <cstdio>

#include "core/pgt_i.h"
#include "data/dataloader.h"
#include "nn/serialize.h"
#include "optim/optim.h"

using namespace pgti;

int main() {
  // Workload: scaled PeMS-BAY with realistic sensor dropouts.
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(24);
  spec.horizon = 6;
  spec.batch_size = 16;
  SensorNetwork net = data::network_for(spec);
  Tensor raw = data::generate_signal(spec, net, /*seed=*/42);
  data::inject_missing_data(raw, /*missing_fraction=*/0.05, /*mean_run=*/12, 42);

  // GPU-index-batching: one upfront upload, all snapshots are device
  // views (paper §4.1).
  SimDevice& gpu = DeviceManager::instance().gpu(0);
  gpu.reset_stats();
  data::IndexDataset dataset(raw, spec, gpu);
  data::IndexSource source(dataset);
  std::printf("dataset: %lld snapshots, %s on device, %llu upload(s)\n",
              static_cast<long long>(dataset.num_snapshots()),
              format_bytes(static_cast<double>(dataset.data().storage_bytes())).c_str(),
              static_cast<unsigned long long>(gpu.stats().h2d_count));

  core::ModelBundle bundle = core::make_model(core::ModelKind::kPgtDcrnn, spec, net,
                                              /*hidden=*/16, /*K=*/2, /*layers=*/1, 42);
  std::vector<Variable> params = bundle.model->parameters();
  optim::Adam::Options adam_opt;
  adam_opt.lr = 2e-3f;
  optim::Adam opt(params, adam_opt);
  optim::StepDecaySchedule schedule(adam_opt.lr, /*step_epochs=*/3, /*gamma=*/0.5f);

  const data::SplitRanges& splits = source.splits();
  data::LoaderOptions lopt;
  lopt.batch_size = spec.batch_size;
  lopt.sampler = data::SamplerOptions{data::ShuffleMode::kGlobal, 0, 1, 42, spec.batch_size};
  lopt.device = &gpu;
  data::DataLoader train(source, lopt, splits.train_begin, splits.train_end);
  data::LoaderOptions vopt = lopt;
  vopt.sampler.mode = data::ShuffleMode::kNone;
  vopt.drop_last = false;
  data::DataLoader val(source, vopt, splits.val_begin, splits.val_end);

  const double sigma = source.scaler().stddev;
  double best_val = 1e30;
  const int epochs = 6;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    opt.set_lr(schedule.lr_for_epoch(epoch));
    train.start_epoch(epoch);
    data::Batch batch;
    double train_sum = 0.0;
    int batches = 0;
    while (train.next(batch) && batches < 20) {
      auto outs = bundle.model->forward_seq(batch.x);
      // Masked loss: entries where the (normalized) target equals the
      // scaler-transform of 0 are missing sensors.
      const float null_norm = source.scaler().transform(0.0f);
      Variable loss;
      for (std::size_t t = 0; t < outs.size(); ++t) {
        Variable l = ag::masked_mae_loss(
            outs[t], batch.y.select(1, static_cast<std::int64_t>(t)).contiguous(),
            null_norm);
        loss = t == 0 ? l : ag::add(loss, l);
      }
      loss = ag::mul_scalar(loss, 1.0f / static_cast<float>(outs.size()));
      bundle.model->zero_grad();
      loss.backward();
      opt.step();
      train_sum += loss.value().item();
      ++batches;
    }

    val.start_epoch(0);
    double val_sum = 0.0;
    int val_batches = 0;
    while (val.next(batch) && val_batches < 6) {
      auto outs = bundle.model->forward_seq(batch.x);
      val_sum += core::seq_mae(outs, batch.y);
      ++val_batches;
    }
    const double val_mae = val_sum / val_batches * sigma;
    std::printf("epoch %d | lr %.4f | train MAE %.3f mph | val MAE %.3f mph\n", epoch,
                opt.lr(), train_sum / batches * sigma, val_mae);
    if (val_mae < best_val) {
      best_val = val_mae;
      nn::save_checkpoint(*bundle.model, "/tmp/pgti_traffic_best.bin");
    }
  }
  std::printf("best val MAE %.3f mph; checkpoint at /tmp/pgti_traffic_best.bin\n",
              best_val);
  std::printf("h2d transfers after training: %llu (GPU-index keeps data resident)\n",
              static_cast<unsigned long long>(gpu.stats().h2d_count));
  return 0;
}
