// Distributed-index-batching vs baseline DDP, head to head, on four
// (thread-level) workers — the paper's §4.2/§5.3 design in one program:
// every worker holds the full index-batched dataset, shuffles globally
// without communication, and synchronizes only gradients.
//
//   ./build/examples/distributed_training
#include <cstdio>

#include "core/pgt_i.h"

using namespace pgti;

namespace {

void report(const char* name, const core::DistResult& r) {
  std::printf("\n%s (world=%d)\n", name, r.world);
  std::printf("  preprocess          : %.2f s\n", r.preprocess_seconds);
  for (const auto& em : r.curve) {
    std::printf("  epoch %d             : train MAE %.3f | val MAE %.3f\n", em.epoch,
                em.train_mae, em.val_mae);
  }
  std::printf("  gradient all-reduces: %llu (%s)\n",
              static_cast<unsigned long long>(r.comm.allreduce_count),
              format_bytes(static_cast<double>(r.comm.allreduce_bytes)).c_str());
  std::printf("  remote data fetched : %llu snapshots (%s), modeled %.3f s\n",
              static_cast<unsigned long long>(r.store.remote_snapshots),
              format_bytes(static_cast<double>(r.store.remote_bytes)).c_str(),
              r.modeled_fetch_seconds);
  std::printf("  peak host memory    : %s\n",
              format_bytes(static_cast<double>(r.peak_host_bytes)).c_str());
}

}  // namespace

int main() {
  core::DistConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(32);
  cfg.spec.horizon = 6;
  cfg.spec.batch_size = 8;
  cfg.world = 4;
  cfg.epochs = 3;
  cfg.hidden_dim = 12;
  cfg.diffusion_steps = 1;
  cfg.lr = 2e-3f;
  cfg.max_batches_per_epoch = 10;
  cfg.max_val_batches = 3;

  std::printf("PeMS-BAY-like workload, 4 workers, global batch %lld\n",
              static_cast<long long>(cfg.spec.batch_size * cfg.world));

  cfg.mode = core::DistMode::kDistributedIndex;
  core::DistResult index = core::DistTrainer(cfg).run();
  report("distributed-index-batching", index);

  cfg.mode = core::DistMode::kBaselineDdp;
  core::DistResult ddp = core::DistTrainer(cfg).run();
  report("baseline DDP (Dask-style store)", ddp);

  // Same baseline with the depth-2 async prefetch pipeline: identical
  // losses, but two batches of lookahead now hide part of the modeled
  // fetch time behind compute and only the exposed share is charged.
  cfg.prefetch_depth = 2;
  core::DistResult ddp_prefetch = core::DistTrainer(cfg).run();
  report("baseline DDP + depth-2 prefetch", ddp_prefetch);
  std::printf("  overlapped          : %.3f s of modeled fetch hidden behind compute\n",
              ddp_prefetch.store.overlapped_seconds);

  std::printf("\nsummary: dist-index moved %s of training data; DDP moved %s\n",
              format_bytes(static_cast<double>(index.store.remote_bytes)).c_str(),
              format_bytes(static_cast<double>(ddp.store.remote_bytes)).c_str());
  return 0;
}
