#!/usr/bin/env bash
# Runs every experiment-reproduction bench and summarizes the
# [REPRODUCED]/[DIVERGED] verdicts.  Exits non-zero if any bench fails
# to run or any claim diverges.
#
#   scripts/run_benches.sh [build-dir]
set -uo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

if [ ! -d "${build_dir}/bench" ]; then
  echo "error: ${build_dir}/bench not found — build first (scripts/check.sh)" >&2
  exit 2
fi

failures=0
diverged=0
reproduced=0
for bench in "${build_dir}"/bench/*; do
  [ -x "${bench}" ] || continue
  name="$(basename "${bench}")"
  log="$("${bench}" 2>&1)"
  status=$?
  if [ ${status} -ne 0 ]; then
    echo "[FAILED    ] ${name} (exit ${status})"
    failures=$((failures + 1))
    continue
  fi
  n_repro=$(printf '%s\n' "${log}" | grep -c '^\[REPRODUCED\]')
  n_div=$(printf '%s\n' "${log}" | grep -c '^\[DIVERGED\]')
  reproduced=$((reproduced + n_repro))
  diverged=$((diverged + n_div))
  if [ "${n_div}" -gt 0 ]; then
    echo "[DIVERGED  ] ${name}"
    printf '%s\n' "${log}" | grep '^\[DIVERGED\]' | sed 's/^/    /'
  else
    echo "[OK        ] ${name} (${n_repro} claims reproduced)"
  fi
done

echo
echo "claims reproduced: ${reproduced}, diverged: ${diverged}, benches failed: ${failures}"
[ $((failures + diverged)) -eq 0 ]
