#!/usr/bin/env bash
# Runs every experiment-reproduction bench and summarizes the
# [REPRODUCED]/[DIVERGED] verdicts.  Exits non-zero if any bench fails
# to run or any claim diverges.  The set is discovered by globbing
# <build-dir>/bench/*, so newly added bench programs (e.g.
# bench_cache_locality, the §5.4 cache-hit-rate / prefetch-overlap
# experiment) are picked up automatically.
#
# Benches are sharded across a pool of JOBS workers — each bench runs
# in its own background job writing to a private log, and the summary
# is printed afterwards in stable (alphabetical glob) order, so the
# output format is identical to a serial run.
#
#   scripts/run_benches.sh [build-dir]
#
# Environment:
#   JOBS  worker-pool size.  Defaults to nproc/2 (min 1) because some
#         benches time real compute and spawn their own worker threads;
#         oversubscription can flip wall-clock-sensitive claims.  Use
#         JOBS=1 for a fully serial, contention-free run.
set -uo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
default_jobs="$(( $(nproc) / 2 ))"
[ "${default_jobs}" -ge 1 ] || default_jobs=1
jobs="${JOBS:-${default_jobs}}"

if [ ! -d "${build_dir}/bench" ]; then
  echo "error: ${build_dir}/bench not found — build first (scripts/check.sh)" >&2
  exit 2
fi

tmp="$(mktemp -d)"
trap 'rm -rf "${tmp}"' EXIT

benches=()
for bench in "${build_dir}"/bench/*; do
  [ -x "${bench}" ] || continue
  benches+=("${bench}")
done

run_one() {
  local bench="$1" name
  name="$(basename "${bench}")"
  "${bench}" > "${tmp}/${name}.log" 2>&1
  echo $? > "${tmp}/${name}.status"
}

# Worker pool: keep at most ${jobs} benches in flight.
active=0
for bench in "${benches[@]}"; do
  run_one "${bench}" &
  active=$((active + 1))
  if [ "${active}" -ge "${jobs}" ]; then
    wait -n || true
    active=$((active - 1))
  fi
done
wait

failures=0
diverged=0
reproduced=0
for bench in "${benches[@]}"; do
  name="$(basename "${bench}")"
  status="$(cat "${tmp}/${name}.status" 2>/dev/null || echo 127)"
  log="$(cat "${tmp}/${name}.log" 2>/dev/null || true)"
  if [ "${status}" -ne 0 ]; then
    echo "[FAILED    ] ${name} (exit ${status})"
    failures=$((failures + 1))
    continue
  fi
  n_repro=$(printf '%s\n' "${log}" | grep -c '^\[REPRODUCED\]')
  n_div=$(printf '%s\n' "${log}" | grep -c '^\[DIVERGED\]')
  reproduced=$((reproduced + n_repro))
  diverged=$((diverged + n_div))
  if [ "${n_div}" -gt 0 ]; then
    echo "[DIVERGED  ] ${name}"
    printf '%s\n' "${log}" | grep '^\[DIVERGED\]' | sed 's/^/    /'
  else
    echo "[OK        ] ${name} (${n_repro} claims reproduced)"
  fi
done

echo
echo "claims reproduced: ${reproduced}, diverged: ${diverged}, benches failed: ${failures}"
[ $((failures + diverged)) -eq 0 ]
