#!/usr/bin/env bash
# Tier-1 gate in one command: configure + build + ctest, with warnings
# in src/dist/ promoted to errors (PGTI_WERROR), plus a multi-process
# smoke stage proving the socket transport reproduces in-process
# losses byte for byte across forked rank processes.
#
#   scripts/check.sh [build-dir]
#
# Environment:
#   JOBS           parallelism (default: nproc)
#   CTEST_ARGS     extra ctest arguments (default: -L tier1)
#   PGTI_SANITIZE  set to "thread" or "address" to ALSO build
#                  <build-dir>-tsan / <build-dir>-asan with
#                  -DPGTI_SANITIZE=<mode> and run the concurrency-heavy
#                  tier-1 suites under it — dist_test,
#                  dist_determinism_test, dist_prefetch_test (async
#                  staging pipeline + PrefetchLoader abort/restart
#                  stress), dist_transport_test (socket-vs-in-process
#                  bit identity, the TCP fault sweeps, and the SimClock
#                  concurrent-charge hammer), epoch_engine_test (the
#                  shared Trainer/DistTrainer pipeline at depth N),
#                  grad_overlap_test (per-rank comm threads firing
#                  ready-bucket all-reduces under backward, including
#                  the mid-backward fault-injection sweep), and
#                  kernel_fusion_test (the threaded blocked/fused
#                  kernels and their parallel_for partitioning), and
#                  arena_test (step-scoped pool recycling under the
#                  prefetch pipeline; under ASan the arena poisons
#                  recycled blocks between leases, so stale reads of
#                  pooled memory fault instead of silently reusing
#                  bits), and serve_test (client threads submitting
#                  against the coalescing worker while a training
#                  thread publishes copy-on-publish snapshots).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
jobs="${JOBS:-$(nproc)}"

cmake -B "${build_dir}" -S "${repo_root}" -DPGTI_WERROR=ON
cmake --build "${build_dir}" -j "${jobs}"
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" ${CTEST_ARGS:--L tier1}

echo
echo "== multi-process smoke: socket transport (forked ranks, world=4) vs in-process =="
"${build_dir}/examples/socket_ddp" --smoke

echo
echo "== alloc-free steady state gate: train step heap allocs must be 0 =="
# Re-runs the arena suite's trainer-level assertions standalone so a
# regression that reintroduces per-step heap traffic (a kernel
# bypassing the workspace cache, a tensor allocated outside the step
# scope) fails the gate by name even if someone trims the ctest label.
"${build_dir}/arena_test" \
  --gtest_filter='ArenaTrainer.SteadyStateTrainStepIsAllocFree:WorkspaceCache.MatmulNtScratchOneAllocationAcross100BackwardSteps'

echo
echo "== serving gate: micro-batch bit-parity + snapshot isolation =="
# The two serving invariants everything else leans on, re-run by name:
# a coalesced micro-batch must be byte-identical to sequential
# single-request forwards, and a mid-flight publish from a concurrent
# training thread must never bleed into a captured snapshot.
"${build_dir}/serve_test" \
  --gtest_filter='ServeBitParity.CoalescedBatchMatchesSequentialForwards:ServeSnapshot.PublishFromTrainingThreadIsolatesVersions'

sanitize="${PGTI_SANITIZE:-}"
if [ -n "${sanitize}" ]; then
  case "${sanitize}" in
    thread)  san_dir="${build_dir}-tsan" ;;
    address) san_dir="${build_dir}-asan" ;;
    *) echo "PGTI_SANITIZE must be 'thread' or 'address', got '${sanitize}'" >&2
       exit 1 ;;
  esac
  echo
  echo "== ${sanitize} sanitizer pass (dist_* + epoch_engine + grad_overlap + kernel_fusion + arena + serve suites) in ${san_dir} =="
  cmake -B "${san_dir}" -S "${repo_root}" -DPGTI_SANITIZE="${sanitize}" -DPGTI_WERROR=ON
  cmake --build "${san_dir}" -j "${jobs}"
  ctest --test-dir "${san_dir}" --output-on-failure -j "${jobs}" -L tier1 \
        -R '^(dist_|epoch_engine|grad_overlap|kernel_fusion|arena|serve_)'
fi
