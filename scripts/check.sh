#!/usr/bin/env bash
# Tier-1 gate in one command: configure + build + ctest, with warnings
# in src/dist/ promoted to errors (PGTI_WERROR).
#
#   scripts/check.sh [build-dir]
#
# Environment:
#   JOBS           parallelism (default: nproc)
#   CTEST_ARGS     extra ctest arguments (default: -L tier1)
#   PGTI_SANITIZE  set to "thread" to ALSO build <build-dir>-tsan with
#                  -DPGTI_SANITIZE=thread and run the dist_* tier-1
#                  suites under ThreadSanitizer — dist_test,
#                  dist_determinism_test, and dist_prefetch_test (the
#                  async staging pipeline + PrefetchLoader
#                  abort/restart stress live in the last one).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
jobs="${JOBS:-$(nproc)}"

cmake -B "${build_dir}" -S "${repo_root}" -DPGTI_WERROR=ON
cmake --build "${build_dir}" -j "${jobs}"
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" ${CTEST_ARGS:--L tier1}

if [ "${PGTI_SANITIZE:-}" = "thread" ]; then
  tsan_dir="${build_dir}-tsan"
  echo
  echo "== ThreadSanitizer pass (dist_* suites) in ${tsan_dir} =="
  cmake -B "${tsan_dir}" -S "${repo_root}" -DPGTI_SANITIZE=thread -DPGTI_WERROR=ON
  cmake --build "${tsan_dir}" -j "${jobs}"
  ctest --test-dir "${tsan_dir}" --output-on-failure -j "${jobs}" -L tier1 -R '^dist_'
fi
