#!/usr/bin/env bash
# Tier-1 gate in one command: configure + build + ctest, with warnings
# in src/dist/ promoted to errors (PGTI_WERROR).
#
#   scripts/check.sh [build-dir]
#
# Environment:
#   JOBS       parallelism (default: nproc)
#   CTEST_ARGS extra ctest arguments (default: -L tier1)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
jobs="${JOBS:-$(nproc)}"

cmake -B "${build_dir}" -S "${repo_root}" -DPGTI_WERROR=ON
cmake --build "${build_dir}" -j "${jobs}"
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" ${CTEST_ARGS:--L tier1}
